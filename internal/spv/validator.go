package spv

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/merkle"
)

// Strategy enumerates the three cross-chain validation techniques of
// Section 4.3. All three are implemented so their storage costs can be
// compared (the paper argues the first two "do not scale as the number
// of blockchains increases").
type Strategy int

// The validation strategies.
const (
	// StrategyFullReplica: validator miners maintain a full copy of
	// the validated blockchain.
	StrategyFullReplica Strategy = iota
	// StrategyLightNode: validator miners run light nodes holding
	// only the validated chain's headers.
	StrategyLightNode
	// StrategyInContract: the paper's proposal — validation logic and
	// a single stable-block checkpoint live inside the validator
	// smart contract; evidence is submitted per transaction.
	StrategyInContract
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFullReplica:
		return "full-replica"
	case StrategyLightNode:
		return "light-node"
	case StrategyInContract:
		return "in-contract"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// LightNode is a headers-only client of one blockchain (the
// alternative validator of Section 4.3, citing [9]): it downloads
// block headers, verifies their proof of work, tracks the longest
// header chain, and verifies transaction inclusion against it.
type LightNode struct {
	id       chain.ID
	headers  map[crypto.Hash]*chain.Header
	byHeight map[uint64]crypto.Hash // canonical (longest-chain) index
	tip      *chain.Header
}

// ErrUnknownHeader is returned when a parent link cannot be resolved.
var ErrUnknownHeader = errors.New("spv: unknown header")

// NewLightNode starts a light node trusting the given genesis header.
func NewLightNode(genesis *chain.Header) *LightNode {
	return &LightNode{
		id:       genesis.ChainID,
		headers:  map[crypto.Hash]*chain.Header{genesis.Hash(): genesis},
		byHeight: map[uint64]crypto.Hash{genesis.Height: genesis.Hash()},
		tip:      genesis,
	}
}

// AddHeader verifies and stores a header, advancing the canonical tip
// when the new header extends the longest chain.
func (l *LightNode) AddHeader(h *chain.Header) error {
	if h.ChainID != l.id {
		return fmt.Errorf("spv: header from chain %q, want %q", h.ChainID, l.id)
	}
	if _, dup := l.headers[h.Hash()]; dup {
		return nil
	}
	parent, ok := l.headers[h.Parent]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrUnknownHeader, h.Parent)
	}
	if h.Height != parent.Height+1 {
		return fmt.Errorf("spv: header height %d after parent %d", h.Height, parent.Height)
	}
	if !h.CheckPoW() {
		return fmt.Errorf("spv: header fails proof of work")
	}
	l.headers[h.Hash()] = h
	if h.Height > l.tip.Height {
		l.tip = h
		// Rewind the canonical index along the new branch.
		for cur := h; ; {
			hh := cur.Hash()
			if l.byHeight[cur.Height] == hh {
				break
			}
			l.byHeight[cur.Height] = hh
			if cur.Height == 0 {
				break
			}
			cur = l.headers[cur.Parent]
		}
	}
	return nil
}

// Tip returns the canonical head header.
func (l *LightNode) Tip() *chain.Header { return l.tip }

// HeaderCount reports stored headers (storage-cost comparisons).
func (l *LightNode) HeaderCount() int { return len(l.headers) }

// VerifyInclusion checks that the transaction encoded in txBytes is
// included in the canonical block with the given hash and buried at
// least minDepth deep.
func (l *LightNode) VerifyInclusion(blockHash crypto.Hash, proof *merkle.Proof, txBytes []byte, minDepth int) (*chain.Tx, error) {
	h, ok := l.headers[blockHash]
	if !ok {
		return nil, fmt.Errorf("%w: block %s", ErrUnknownHeader, blockHash)
	}
	if l.byHeight[h.Height] != blockHash {
		return nil, evErr("block %s not canonical", blockHash)
	}
	if int(l.tip.Height-h.Height) < minDepth {
		return nil, evErr("block at depth %d, need %d", l.tip.Height-h.Height, minDepth)
	}
	tx, err := chain.DecodeTx(txBytes)
	if err != nil {
		return nil, evErr("tx bytes: %v", err)
	}
	id := tx.ID()
	if !proof.VerifyData(h.TxRoot, id[:]) {
		return nil, evErr("merkle proof fails")
	}
	return tx, nil
}

// StorageCost estimates the bytes a validator must persist per
// strategy to validate transactions on a chain with the given block
// count and mean block size (bytes). For StrategyInContract the
// persistent cost is a single checkpoint header; evidence is
// per-verification transient.
func StorageCost(s Strategy, blocks int, meanBlockBytes int, headerBytes int) int {
	switch s {
	case StrategyFullReplica:
		return blocks * meanBlockBytes
	case StrategyLightNode:
		return blocks * headerBytes
	case StrategyInContract:
		return headerBytes
	default:
		return 0
	}
}
