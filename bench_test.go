package repro

// One benchmark per table and figure of the paper's evaluation
// (Section 6), plus the safety and scalability claims of Sections 1
// and 5. Each benchmark executes the full experiment — real protocol
// runs on simulated blockchain networks — and fails if the
// experiment's sanity assertions (the paper's qualitative claims) do
// not hold. Run with:
//
//	go test -bench=. -benchmem .
//
// For paper-style table output use cmd/ac3bench instead.

import (
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one experiment per iteration, varying the
// seed so iterations are independent, and fails the benchmark if any
// iteration's claims break.
func runExperiment(b *testing.B, f func(seed uint64) *bench.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := f(42 + uint64(i))
		if !r.OK {
			b.Fatalf("experiment %s failed its assertions:\n%s", r.ID, r)
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: the Herlihy single-leader
// timeline with sequential deploy and redeem phases, 2·Δ·Diam(D).
func BenchmarkFig8(b *testing.B) {
	runExperiment(b, bench.Fig8)
}

// BenchmarkFig9 regenerates Figure 9: AC3WN's constant 4·Δ timeline
// on the same 5-contract graph.
func BenchmarkFig9(b *testing.B) {
	runExperiment(b, bench.Fig9)
}

// BenchmarkFig10 regenerates Figure 10: AC2T latency in Δs versus
// graph diameter — linear for the baseline, flat for AC3WN.
func BenchmarkFig10(b *testing.B) {
	runExperiment(b, func(seed uint64) *bench.Result { return bench.Fig10(seed, 8) })
}

// BenchmarkCost regenerates the Section 6.2 fee table: N·(fd+ffc)
// versus (N+1)·(fd+ffc) with measured operation counts.
func BenchmarkCost(b *testing.B) {
	runExperiment(b, bench.Cost)
}

// BenchmarkWitnessChoice regenerates Section 6.3: minimum
// confirmation depth d > Va·dh/Ch per witness network, plus fork-race
// success probabilities (simulated vs analytic).
func BenchmarkWitnessChoice(b *testing.B) {
	runExperiment(b, bench.WitnessChoice)
}

// BenchmarkTable1 regenerates Table 1 (chain throughput) and the
// Section 6.4 min() composition for AC2T throughput.
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, bench.Table1)
}

// BenchmarkAtomicity regenerates the safety comparison: the HTLC
// baseline violates all-or-nothing under crashes, AC3WN never does.
func BenchmarkAtomicity(b *testing.B) {
	runExperiment(b, func(seed uint64) *bench.Result { return bench.Atomicity(seed, 3) })
}

// BenchmarkComplexGraphs regenerates the Section 5.3 / Figure 7
// demonstration: cyclic and disconnected AC2Ts commit under AC3WN.
func BenchmarkComplexGraphs(b *testing.B) {
	runExperiment(b, bench.Complex)
}

// BenchmarkScalability regenerates the Section 5.2 experiment:
// aggregate AC2T throughput grows with the number of witness
// networks.
func BenchmarkScalability(b *testing.B) {
	runExperiment(b, bench.Scale)
}

// BenchmarkEngineLoad runs the sharded orchestration engine's
// throughput-under-load experiment: a sustained mixed AC2T stream
// (commits, aborts, crash-recovery, decision races) across parallel
// shard worlds, asserting zero atomicity violations and near-linear
// shard scaling.
func BenchmarkEngineLoad(b *testing.B) {
	runExperiment(b, bench.EngineLoad)
}
