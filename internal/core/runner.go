package core

import (
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/protocol"
	"repro/internal/xchain"
)

// Runner is the uniform lifecycle the orchestration engine
// (internal/engine) multiplexes: every commitment protocol in this
// repository — AC3WN, AC3TW, and the HTLC baselines in internal/swap
// — runs on the internal/protocol reconciler runtime, drives itself
// off the shared simulator once started, exposes a cheap quiescence
// check, can be retired, and grades its outcome from ground-truth
// chain views. The engine steps a whole shard of concurrent Runners
// on one virtual clock and retires each as it settles.
type Runner interface {
	// Start begins the protocol at the current virtual time.
	Start()
	// Settled reports whether the run has reached a stable terminal
	// state: a decision exists and every deployed asset contract has
	// left Published. Engines still apply their own deadline on top,
	// because a crashed participant can hold a run open indefinitely
	// (that is the paper's Section 1 hazard, not a bug).
	Settled() bool
	// Stop retires the run: subscriptions are canceled and timers go
	// inert, so finished transactions stop consuming simulator
	// events. Idempotent, and safe after crashes already tore the
	// subscriptions down.
	Stop()
	// Grade reads terminal contract states from ground-truth views.
	Grade() *xchain.Outcome
	// Events returns the run's timeline (a snapshot; safe to retain).
	Events() []protocol.Event
	// Marks returns the run's uniform phase boundaries — the
	// cross-protocol instrumentation points internal/trace derives
	// phase spans from.
	Marks() []protocol.Mark
}

// Settled reports run quiescence for AC3WN: the commit/abort decision
// is stable at depth d and every asset contract that made it on-chain
// has settled (redeemed or refunded) on the ground-truth view. An
// abort with nothing deployed is settled trivially — there is nothing
// at stake. A deploy that was submitted but not yet confirmed blocks
// quiescence: its transaction is kept alive across forks (EnsureTx),
// so the contract can still materialize after a refund decision — and
// must then be refunded, not stranded. Without this, a refund decided
// faster than a deploy confirms (easy under decision batching, where
// an AC2T can join a window that is already closing) reads as settled
// during exactly the gap in which the late contract appears.
func (r *Run) Settled() bool {
	if r.DecidedAt == 0 {
		return false
	}
	for i := range r.ownTx {
		if r.ownTx[i] != nil && !r.announced[i] {
			return false // submitted deploy still in flight
		}
	}
	deployed, settled := xchain.AllSettled(r.w, r.cfg.Graph, r.addrs)
	if !settled {
		return false
	}
	return deployed || r.DecidedOutcome == contracts.WitnessRefundAuthorized
}

// Settled reports run quiescence for AC3TW, mirroring AC3WN: Trent
// decided and every deployed contract left Published on the
// ground-truth view.
func (r *TWRun) Settled() bool {
	if r.decision == 0 {
		return false
	}
	deployed, settled := xchain.AllSettled(r.w, r.cfg.Graph, r.addrs)
	if !settled {
		return false
	}
	return deployed || r.decision == crypto.PurposeRefund
}
