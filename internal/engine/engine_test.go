package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// testWorkload is a small mixed workload that still exercises every
// scenario: commits, declines, one crash-recovery participant per
// shard (weights guarantee at least one draw at this size), and
// adversarial decision races.
func testWorkload(txs int) Workload {
	wl := DefaultWorkload()
	wl.Txs = txs
	wl.ArrivalEvery = 15 * sim.Second
	wl.Mix = Mix{Commit: 4, Abort: 2, Crash: 2, Race: 2}
	return wl
}

func run(t *testing.T, cfg Config) *Aggregate {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// TestDeterminism is the engine's core guarantee: the same master
// seed and shard count produce byte-identical aggregates, no matter
// how many workers the scheduler spreads the shards over.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Shards: 4, Workload: testWorkload(24)}
	a := run(t, cfg)
	cfg.Workers = 1 // serialize: different interleaving, same shards
	b := run(t, cfg)

	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("aggregates differ across runs:\n%s\n----\n%s", aj, bj)
	}
	if a.Graded != 24 {
		t.Fatalf("graded %d/24", a.Graded)
	}
}

// TestMixedScenarioAtomicity runs commits, aborts, crash-recovery and
// decision races concurrently in every shard and asserts the paper's
// core claim under load: zero atomicity violations, nothing left
// stuck, and every scenario behaves as designed.
func TestMixedScenarioAtomicity(t *testing.T) {
	agg := run(t, Config{Seed: 7, Shards: 3, Workload: testWorkload(30)})

	if agg.Graded != 30 {
		t.Fatalf("graded %d/30", agg.Graded)
	}
	if agg.Violations != 0 {
		t.Fatalf("AC3WN produced %d atomicity violations under mixed load", agg.Violations)
	}
	if agg.Stuck != 0 {
		t.Fatalf("%d transactions stuck (neither committed nor cleanly aborted)", agg.Stuck)
	}
	// Every scenario must actually have been drawn at these weights.
	for _, sc := range []Scenario{ScenarioCommit, ScenarioAbort, ScenarioCrash, ScenarioRace} {
		st, ok := agg.ByScenario[sc]
		if !ok || st.Txs == 0 {
			t.Fatalf("scenario %s never drawn: %+v", sc, agg.ByScenario)
		}
		if st.Violations != 0 {
			t.Fatalf("scenario %s violated atomicity %d times", sc, st.Violations)
		}
	}
	// Well-behaved transactions commit; declines abort.
	if st := agg.ByScenario[ScenarioCommit]; st.Commits != st.Txs {
		t.Fatalf("commit scenario: %d/%d committed", st.Commits, st.Txs)
	}
	if st := agg.ByScenario[ScenarioAbort]; st.Aborts != st.Txs {
		t.Fatalf("abort scenario: %d/%d aborted", st.Aborts, st.Txs)
	}
	// Crash-recovery is the headline: the victim is down for 8
	// virtual minutes — far beyond timelock scale — and still nobody
	// loses assets (committed or cleanly aborted, never mixed).
	if st := agg.ByScenario[ScenarioCrash]; st.Commits+st.Aborts != st.Txs {
		t.Fatalf("crash scenario left %d unsettled", st.Txs-st.Commits-st.Aborts)
	}
	// Sanity on the aggregate accounting.
	if agg.Commits+agg.Aborts+agg.Stuck != agg.Graded {
		t.Fatalf("outcome counts do not add up: %+v", agg)
	}
	// Shared-executor accounting: each shard world runs AssetChains+1
	// networks, and each network executes exactly mined+genesis blocks
	// — not N× mined as the per-view stores did.
	networks := uint64(agg.Shards * (DefaultWorkload().AssetChains + 1))
	if agg.BlocksExecuted != uint64(agg.BlocksMined)+networks {
		t.Fatalf("blocks executed = %d, want mined %d + %d genesis: redundant execution",
			agg.BlocksExecuted, agg.BlocksMined, networks)
	}
	if agg.ExecHitRate <= 0.5 { // 3-miner networks: 2 of 3 adoptions are hits
		t.Fatalf("exec cache hit rate %.2f, want ~0.67", agg.ExecHitRate)
	}
	if agg.BlocksExecutedPerTx <= 0 {
		t.Fatal("no per-transaction execution cost computed")
	}
	if agg.LatencyMs.Count != uint64(agg.Graded) {
		t.Fatalf("latency histogram has %d samples, want %d", agg.LatencyMs.Count, agg.Graded)
	}
	if agg.ThroughputTPSVirtual <= 0 {
		t.Fatal("no virtual throughput computed")
	}
}

// adversityWorkload mixes the classic matrix with the network-
// hostility scenarios.
func adversityWorkload(txs int) Workload {
	wl := DefaultWorkload()
	wl.Txs = txs
	wl.ArrivalEvery = 15 * sim.Second
	wl.Mix = Mix{Commit: 3, Abort: 1, Crash: 1, Race: 1, Partition: 2, Lossy: 2, Geo: 2}
	return wl
}

// TestAdversityDeterminism extends the byte-identical guarantee to
// the hostile-network regime: partition windows, loss draws, and
// latency overlays must all ride the per-shard clocks and forked
// RNGs, so worker scheduling still cannot leak into the aggregates.
func TestAdversityDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Shards: 4, Workload: adversityWorkload(28)}
	a := run(t, cfg)
	cfg.Workers = 1
	b := run(t, cfg)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("adversity aggregates differ across worker counts:\n%s\n----\n%s", aj, bj)
	}
	if a.MsgsDropped == 0 {
		t.Fatal("no messages dropped — the lossy scenario never bit")
	}
	if a.ForksObserved == 0 || a.MaxReorgDepth == 0 {
		t.Fatalf("no forks observed under adversity (forks=%d depth=%d)",
			a.ForksObserved, a.MaxReorgDepth)
	}
}

// TestAdversityAtomicity is the tentpole claim at engine scale: with
// partitions splitting decision windows, sustained gossip loss, and
// geo-skewed links all hammering the same shard worlds, AC3WN still
// settles everything without a single atomicity violation — the
// regime the paper's Section 1 argues the baselines cannot survive.
func TestAdversityAtomicity(t *testing.T) {
	agg := run(t, Config{Seed: 9, Shards: 3, Workload: adversityWorkload(30)})
	if agg.Graded != 30 {
		t.Fatalf("graded %d/30", agg.Graded)
	}
	if agg.Violations != 0 {
		t.Fatalf("AC3WN violated atomicity %d times under network adversity", agg.Violations)
	}
	for _, sc := range []Scenario{ScenarioPartition, ScenarioLossy, ScenarioGeo} {
		st, ok := agg.ByScenario[sc]
		if !ok || st.Txs == 0 {
			t.Fatalf("scenario %s never drawn: %+v", sc, agg.ByScenario)
		}
		if st.Violations != 0 {
			t.Fatalf("scenario %s violated atomicity %d times", sc, st.Violations)
		}
		// Non-blocking under adversity: every hostile transaction still
		// settles (commit or clean abort) before its grading deadline.
		if st.Commits+st.Aborts != st.Txs {
			t.Fatalf("scenario %s left %d stuck", sc, st.Txs-st.Commits-st.Aborts)
		}
	}
	if agg.MsgsDropped == 0 {
		t.Fatal("adversity run dropped no messages")
	}
}

// TestBackpressureQueues proves the in-flight cap actually defers
// arrivals: with a cap of 1 and a fast arrival process, later
// transactions must start (and therefore finish) strictly after
// earlier ones, stretching the makespan well beyond the arrival span.
func TestBackpressureQueues(t *testing.T) {
	wl := DefaultWorkload()
	wl.Txs = 6
	wl.ArrivalEvery = 2 * sim.Second // all arrive almost at once
	wl.MaxInFlight = 1
	wl.Mix = Mix{Commit: 1} // only commits: deterministic service times
	wl.Sizes = []SizeWeight{{Size: 2, Weight: 1}}
	agg := run(t, Config{Seed: 11, Shards: 1, Workload: wl})
	if agg.Graded != 6 || agg.Stuck != 0 {
		t.Fatalf("graded=%d stuck=%d", agg.Graded, agg.Stuck)
	}
	// Six strictly serialized commits take at least 6 minimum
	// commit latencies; concurrent execution would overlap them.
	minSerial := 6 * agg.LatencyMs.Min
	if agg.MakespanVirtualMs < minSerial {
		t.Fatalf("makespan %dms < %dms: cap of 1 did not serialize",
			agg.MakespanVirtualMs, minSerial)
	}
}

// TestHTLCBaselineLosesAssetsUnderCrash is the contrast experiment at
// engine scale: the same crash-at-decision workload that AC3WN
// absorbs makes the HTLC baseline violate atomicity (the crashed
// victim's incoming contract refunds at the timelock while the
// counterparty already redeemed with the revealed secret).
func TestHTLCBaselineLosesAssetsUnderCrash(t *testing.T) {
	wl := DefaultWorkload()
	wl.Txs = 8
	wl.Protocol = ProtoHTLC
	wl.ArrivalEvery = 30 * sim.Second
	wl.Mix = Mix{Crash: 1} // every transaction hits the hazard
	wl.Sizes = []SizeWeight{{Size: 2, Weight: 1}}
	agg := run(t, Config{Seed: 3, Shards: 2, Workload: wl})
	if agg.Graded != 8 {
		t.Fatalf("graded %d/8", agg.Graded)
	}
	if agg.Violations == 0 {
		t.Fatal("HTLC survived the crash hazard — the baseline contrast is broken")
	}
}

// TestConfigValidation exercises the rejection paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Seed: 1, Shards: 0, Workload: DefaultWorkload()},
		{Seed: 1, Shards: 2, Workers: -1, Workload: DefaultWorkload()},
	}
	wl := DefaultWorkload()
	wl.Txs = 1
	bad = append(bad, Config{Seed: 1, Shards: 2, Workload: wl}) // txs < shards
	wl2 := DefaultWorkload()
	wl2.Protocol = "nope"
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl2})
	wl3 := DefaultWorkload()
	wl3.Mix = Mix{}
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl3})
	wl4 := DefaultWorkload()
	wl4.Sizes = []SizeWeight{{Size: 1, Weight: 1}}
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl4})
	wl5 := DefaultWorkload()
	wl5.Mix = Mix{Lossy: 1}
	wl5.Adversity.Loss = 1.5 // probability out of range
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl5})
	wl6 := DefaultWorkload()
	wl6.Mix = Mix{Partition: 1}
	wl6.Adversity.PartitionFor = wl6.TxTimeout + sim.Minute // heals after grading
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl6})
	wl7 := DefaultWorkload()
	wl7.Mix = Mix{Lossy: 1}
	wl7.Adversity.LossyFor = 0
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl7})
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
