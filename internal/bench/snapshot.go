package bench

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// EngineSnapshot is the machine-readable perf snapshot the ROADMAP's
// diffable trajectory is built from: one BENCH_<pr>.json per PR,
// produced by `ac3bench -snapshot`, diffed across PRs instead of
// burying the numbers in prose. Virtual-time fields are deterministic
// per seed; wall-clock fields measure the machine that produced the
// snapshot and are expected to drift.
type EngineSnapshot struct {
	Label string        `json:"label"`
	Seed  uint64        `json:"seed"`
	Rows  []SnapshotRow `json:"rows"`
}

// SnapshotRow is one engine configuration's measured outcome.
type SnapshotRow struct {
	Shards int `json:"shards"`
	Txs    int `json:"txs"`
	// WallMs is real elapsed time for the run on the snapshotting
	// machine (not deterministic; tracked for trajectory, not truth).
	WallMs int64 `json:"wall_ms"`

	Commits    int `json:"commits"`
	Aborts     int `json:"aborts"`
	Stuck      int `json:"stuck"`
	Violations int `json:"atomicity_violations"`

	EventsPerTx          float64 `json:"sim_events_per_tx"`
	BlocksExecutedPerTx  float64 `json:"blocks_executed_per_tx"`
	ThroughputTPSVirtual float64 `json:"throughput_tps_virtual"`
	MakespanVirtualMs    int64   `json:"makespan_virtual_ms"`

	LatencyP50Ms  int64 `json:"latency_p50_ms"`
	LatencyP99Ms  int64 `json:"latency_p99_ms"`
	LatencyP999Ms int64 `json:"latency_p999_ms"`

	// PhaseLatency is the engine's per-phase attribution table for
	// this configuration — where the virtual time of an AC2T goes.
	PhaseLatency []engine.PhaseLatencyRow `json:"phase_latency"`
}

// Snapshot runs the EngineLoad shard sweep (same workload, 1/2/4
// shards) and returns the machine-readable snapshot.
func Snapshot(seed uint64, label string) (*EngineSnapshot, error) {
	const perShardTxs = 20
	snap := &EngineSnapshot{Label: label, Seed: seed}
	for _, shards := range []int{1, 2, 4} {
		wl := engine.DefaultWorkload()
		wl.Txs = perShardTxs * shards
		wl.ArrivalEvery = 15 * sim.Second
		wl.Mix = engine.Mix{Commit: 5, Abort: 2, Crash: 2, Race: 1}
		e, err := engine.New(engine.Config{Seed: seed, Shards: shards, Workload: wl})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		agg, err := e.Run()
		if err != nil {
			return nil, err
		}
		snap.Rows = append(snap.Rows, SnapshotRow{
			Shards:               shards,
			Txs:                  agg.Txs,
			WallMs:               time.Since(start).Milliseconds(),
			Commits:              agg.Commits,
			Aborts:               agg.Aborts,
			Stuck:                agg.Stuck,
			Violations:           agg.Violations,
			EventsPerTx:          agg.SimEventsPerTx,
			BlocksExecutedPerTx:  agg.BlocksExecutedPerTx,
			ThroughputTPSVirtual: agg.ThroughputTPSVirtual,
			MakespanVirtualMs:    agg.MakespanVirtualMs,
			LatencyP50Ms:         agg.LatencyP50Ms,
			LatencyP99Ms:         agg.LatencyP99Ms,
			LatencyP999Ms:        agg.LatencyP999Ms,
			PhaseLatency:         agg.PhaseLatency,
		})
	}
	return snap, nil
}

// WriteSnapshot marshals the snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s *EngineSnapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
