// Package attack implements the witness-network risk analysis of
// Section 6.3: a malicious participant may rent hash power to fork
// the witness blockchain for d blocks and flip the AC2T decision, so
// the confirmation depth d must make the attack cost exceed the value
// at stake — d > Va·dh/Ch. The package provides the analytic bound,
// the crypto51-style cost table the paper cites, the classic
// private-fork success probability (Nakamoto/Rosenfeld), and a
// discrete-event double-spend race simulator that validates the
// analytics against the actual chain implementation.
package attack

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// NetworkCost describes a candidate witness network's attack economics.
type NetworkCost struct {
	Name string
	// HourlyCostUSD is Ch: the cost of renting 51% of the network's
	// hash power for one hour (crypto51.app snapshot as cited by the
	// paper, reference [7]).
	HourlyCostUSD float64
	// BlocksPerHour is dh.
	BlocksPerHour float64
}

// Crypto51Snapshot mirrors the cost table the paper uses: the Bitcoin
// figure ($300K/hour, 6 blocks/hour) appears explicitly in Section
// 6.3; the others are the same source's contemporaneous values for
// the remaining top-market-cap chains of Table 1.
//
//ac3:globalstate read-only snapshot of the paper's published cost table; written once here, never mutated
var Crypto51Snapshot = []NetworkCost{
	{Name: "Bitcoin", HourlyCostUSD: 300_000, BlocksPerHour: 6},
	{Name: "Ethereum", HourlyCostUSD: 100_000, BlocksPerHour: 240},
	{Name: "Litecoin", HourlyCostUSD: 23_000, BlocksPerHour: 24},
	{Name: "Bitcoin Cash", HourlyCostUSD: 8_000, BlocksPerHour: 6},
}

// MinDepth returns the minimum confirmation depth d that makes a
// 51% attack uneconomical for an AC2T holding assetValueUSD:
// the smallest integer d with d > Va·dh/Ch (Section 6.3's
// inequality). The paper's example: Va = $1M on Bitcoin gives
// d > 1M·6/300K = 20, so d = 21.
func MinDepth(assetValueUSD float64, n NetworkCost) int {
	if assetValueUSD <= 0 || n.HourlyCostUSD <= 0 {
		return 1
	}
	bound := assetValueUSD * n.BlocksPerHour / n.HourlyCostUSD
	d := int(math.Floor(bound)) + 1
	if d < 1 {
		d = 1
	}
	return d
}

// AttackCostUSD returns the cost of sustaining a 51% attack for d
// blocks on the network.
func AttackCostUSD(d int, n NetworkCost) float64 {
	if n.BlocksPerHour == 0 {
		return math.Inf(1)
	}
	return float64(d) / n.BlocksPerHour * n.HourlyCostUSD
}

// SuccessProbability returns the probability that an attacker with
// fraction q of the hash power ever catches up from z blocks behind —
// Nakamoto's catch-up analysis (Satoshi's appendix / Rosenfeld). For
// q >= 0.5 the attack always eventually succeeds.
func SuccessProbability(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	// λ = z·q/p; P = 1 − Σ_{k=0}^{z} Pois(k;λ)·(1 − (q/p)^{z−k})
	lambda := float64(z) * q / p
	sum := 0.0
	poisson := math.Exp(-lambda)
	for k := 0; k <= z; k++ {
		if k > 0 {
			poisson *= lambda / float64(k)
		}
		sum += poisson * (1 - math.Pow(q/p, float64(z-k)))
	}
	pr := 1 - sum
	if pr < 0 {
		return 0
	}
	return pr
}

// SuccessProbabilityExact returns the exact double-spend success
// probability under the race model (Rosenfeld's analysis): while the
// honest chain mines its z blocks, the attacker's progress k follows
// a negative-binomial distribution (each block is the attacker's with
// probability q), after which it must close the remaining z−k gap —
// a gambler's ruin with per-step success q. Nakamoto's formula
// (SuccessProbability) approximates the same quantity with a Poisson
// and undershoots in the deep tail; the race simulator matches this
// exact form.
func SuccessProbabilityExact(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	// P(k attacker blocks while honest mines z) = C(z+k-1, k) p^z q^k.
	// Work in log space: p^z underflows for the thousand-block depths
	// Section 6.3's inequality produces on high-rate chains.
	logNB := float64(z) * math.Log(p) // k = 0 term
	logRatio := math.Log(q / p)
	success := 0.0
	total := 0.0
	for k := 0; k <= z; k++ {
		if k > 0 {
			logNB += math.Log(q) + math.Log(float64(z+k-1)/float64(k))
		}
		total += math.Exp(logNB)
		success += math.Exp(logNB + float64(z-k)*logRatio)
	}
	// Remaining mass (k > z): attacker is already ahead, success
	// certain. total can exceed 1 by rounding; clamp.
	if rest := 1 - total; rest > 0 {
		success += rest
	}
	if success < 0 {
		return 0
	}
	if success > 1 {
		return 1
	}
	return success
}

// RaceResult aggregates a simulated double-spend race campaign.
type RaceResult struct {
	Trials    int
	Successes int
	// Rate is the empirical success fraction.
	Rate float64
}

// SimulateRace runs the witness-fork race as a stochastic simulation
// of the Section 6.3 attack: the decision transaction lands in an
// honest block; the attacker immediately starts mining a private fork
// from that block's parent (pre-mining) while the honest network
// buries the decision under d more blocks; participants then act, and
// the attacker keeps racing until it either overtakes the honest
// chain (erasing the decision) or falls maxLag blocks behind and
// gives up. Each next block is the attacker's with probability q —
// the Bernoulli embedding of two competing Poisson miners.
//
// The result tracks Nakamoto's SuccessProbability(q, d+1) (the
// attacker must erase the decision block itself plus its d burials);
// the atomicity experiment uses it to show the violation probability
// ε vanishing with d (Lemma 5.3).
func SimulateRace(rng *sim.RNG, q float64, d int, trials int, maxLag int) RaceResult {
	if maxLag <= 0 {
		maxLag = 40
	}
	res := RaceResult{Trials: trials}
	for t := 0; t < trials; t++ {
		// Phase 1: the attacker starts its private fork the moment
		// the decision transaction is broadcast; the honest chain
		// mines the decision block plus d confirmations (d+1 blocks)
		// while the attacker pre-mines in parallel.
		honest, attacker := 0, 0
		for honest < d+1 {
			if rng.Float64() < q {
				attacker++
			} else {
				honest++
			}
		}
		// Phase 2: gambler's-ruin race on the remaining deficit.
		deficit := honest - attacker
		for deficit > 0 && deficit < maxLag {
			if rng.Float64() < q {
				deficit--
			} else {
				deficit++
			}
		}
		if deficit <= 0 {
			res.Successes++
		}
	}
	res.Rate = float64(res.Successes) / float64(res.Trials)
	return res
}

// String renders a race result.
func (r RaceResult) String() string {
	return fmt.Sprintf("%d/%d succeeded (%.4f)", r.Successes, r.Trials, r.Rate)
}
